package hanccr

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSweepConfigValidation is the table-driven contract of
// SweepRequest.sweepConfig: what is rejected, with which message, and
// at which cell ceiling.
func TestSweepConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		req     SweepRequest
		cap     int
		wantErr string // substring; "" means valid
	}{
		{"defaults are the paper grid", SweepRequest{}, maxSweepCells, ""},
		{"unknown family", SweepRequest{Family: "nope"}, maxSweepCells, "unknown family"},
		{"empty sizes list", SweepRequest{Sizes: []int{}}, maxSweepCells, "sweep grid is empty"},
		{"empty procs list", SweepRequest{Procs: []int{}}, maxSweepCells, "sweep grid is empty"},
		{"empty pfails list", SweepRequest{PFails: []float64{}}, maxSweepCells, "sweep grid is empty"},
		{"zero size", SweepRequest{Sizes: []int{0}}, maxSweepCells, "at least one task"},
		{"negative procs", SweepRequest{Procs: []int{-1}}, maxSweepCells, "at least one processor"},
		{"pfail at one", SweepRequest{PFails: []float64{1}}, maxSweepCells, "outside [0, 1)"},
		{"inverted CCR range", SweepRequest{CCRMin: 1, CCRMax: 0.001}, maxSweepCells, "bad CCR range"},
		{"over the buffered cap", SweepRequest{PointsPerDecade: 10_000}, maxSweepCells, "above the daemon limit"},
		{"same grid under the streaming cap", SweepRequest{PointsPerDecade: 10_000}, DefaultStreamSweepCells, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := tc.req.sweepConfig(tc.cap)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if cfg.NumCells() == 0 {
					t.Fatal("valid request produced an empty grid")
				}
				return
			}
			if err == nil {
				t.Fatalf("no error, want one containing %q (got config %+v)", tc.wantErr, cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
			if status := errorStatus(err); status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", status)
			}
		})
	}
}

// streamLines splits an NDJSON body into its lines.
func streamLines(t *testing.T, body string) []string {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty NDJSON body")
	}
	return lines
}

// TestHTTPSweepStreamGolden is the streaming-vs-buffered golden: for
// shards {1, 4} × workers {1, NumCPU}, the NDJSON row lines
// concatenated must be byte-identical to the buffered response's Rows
// elements, whether streaming was selected by the "stream" field or by
// the Accept header. Run under -race via make check.
func TestHTTPSweepStreamGolden(t *testing.T) {
	grid := `"family":"genome","sizes":[40],"procs":[3],"pfails":[0.001],"ccr_min":0.001,"ccr_max":0.01,"points_per_decade":5`
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, runtime.NumCPU()} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				srv := httptest.NewServer(NewHandler(NewService(WithShards(shards))))
				defer srv.Close()
				req := fmt.Sprintf(`{%s,"workers":%d}`, grid, workers)

				status, buffered, hdr := postJSON(t, srv.Client(), srv.URL+"/v1/sweep", req)
				if status != http.StatusOK {
					t.Fatalf("buffered sweep: %d %s", status, buffered)
				}
				if ct := hdr.Get("Content-Type"); ct != "application/json" {
					t.Fatalf("buffered Content-Type = %q", ct)
				}
				var ref struct {
					Family string            `json:"family"`
					Cells  int               `json:"cells"`
					Rows   []json.RawMessage `json:"rows"`
				}
				if err := json.Unmarshal([]byte(buffered), &ref); err != nil {
					t.Fatal(err)
				}
				if ref.Cells != 6 || len(ref.Rows) != 6 {
					t.Fatalf("buffered grid has %d cells / %d rows, want 6", ref.Cells, len(ref.Rows))
				}

				streamedReq := fmt.Sprintf(`{%s,"workers":%d,"stream":true}`, grid, workers)
				status, streamed, hdr := postJSON(t, srv.Client(), srv.URL+"/v1/sweep", streamedReq)
				if status != http.StatusOK {
					t.Fatalf("streamed sweep: %d %s", status, streamed)
				}
				if ct := hdr.Get("Content-Type"); ct != ndjsonContentType {
					t.Fatalf("streamed Content-Type = %q", ct)
				}
				lines := streamLines(t, streamed)
				if len(lines) != 1+len(ref.Rows) {
					t.Fatalf("stream has %d lines, want header + %d rows", len(lines), len(ref.Rows))
				}
				var head SweepStreamHeader
				if err := json.Unmarshal([]byte(lines[0]), &head); err != nil {
					t.Fatalf("header line %q: %v", lines[0], err)
				}
				if head.Family != ref.Family || head.Cells != ref.Cells {
					t.Fatalf("stream header %+v, buffered says family=%s cells=%d", head, ref.Family, ref.Cells)
				}
				for i, row := range ref.Rows {
					if lines[1+i] != string(row) {
						t.Fatalf("row %d differs:\nstream:   %s\nbuffered: %s", i, lines[1+i], row)
					}
				}

				// Accept-header negotiation must produce the identical stream.
				hr, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/sweep",
					strings.NewReader(fmt.Sprintf(`{%s,"workers":%d}`, grid, workers)))
				if err != nil {
					t.Fatal(err)
				}
				hr.Header.Set("Accept", ndjsonContentType)
				resp, err := srv.Client().Do(hr)
				if err != nil {
					t.Fatal(err)
				}
				var sb strings.Builder
				scan := bufio.NewScanner(resp.Body)
				for scan.Scan() {
					sb.WriteString(scan.Text())
					sb.WriteByte('\n')
				}
				resp.Body.Close()
				if err := scan.Err(); err != nil {
					t.Fatal(err)
				}
				if sb.String() != streamed {
					t.Fatal("Accept-negotiated stream differs from stream:true body")
				}
			})
		}
	}
}

// flushCounter counts Flush calls on top of a ResponseRecorder, so a
// handler-level test can assert per-row flushing.
type flushCounter struct {
	*httptest.ResponseRecorder
	flushes atomic.Int64
}

func (f *flushCounter) Flush() {
	f.flushes.Add(1)
	f.ResponseRecorder.Flush()
}

// TestHTTPSweepStreamFlushes pins that every streamed line — the
// header and each row — is flushed to the client as it is produced,
// not buffered until the sweep completes.
func TestHTTPSweepStreamFlushes(t *testing.T) {
	h := NewHandler(NewService())
	body := `{"family":"genome","sizes":[40],"procs":[3],"pfails":[0.001],"ccr_min":0.001,"ccr_max":0.01,"points_per_decade":5,"stream":true}`
	w := &flushCounter{ResponseRecorder: httptest.NewRecorder()}
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	lines := streamLines(t, w.Body.String())
	if len(lines) != 7 { // header + 6 rows
		t.Fatalf("%d lines, want 7", len(lines))
	}
	if got := w.flushes.Load(); got < int64(len(lines)) {
		t.Fatalf("flushed %d times for %d lines, want one flush per line", got, len(lines))
	}
}

// TestHTTPSweepStreamLargeGridCancel is the scale half of the
// streaming contract: a 100k-cell grid — far above the buffered cap —
// must start streaming rows immediately (nothing buffers server-side;
// the bounded reorder window is asserted in internal/par), and a
// client cancelling mid-stream must abort the sweep cleanly instead of
// running the remaining cells.
func TestHTTPSweepStreamLargeGridCancel(t *testing.T) {
	pfails := make([]string, 1000)
	for i := range pfails {
		pfails[i] = fmt.Sprintf("%g", float64(i)/2000)
	}
	grid := fmt.Sprintf(`"family":"genome","sizes":[40],"procs":[3],"pfails":[%s],"ccr_min":0.0001,"ccr_max":1,"points_per_decade":25`,
		strings.Join(pfails, ","))

	srv := httptest.NewServer(NewHandler(NewService()))
	defer srv.Close()

	// Buffered, the same grid must be refused outright.
	status, body, _ := postJSON(t, srv.Client(), srv.URL+"/v1/sweep", "{"+grid+"}")
	if status != http.StatusBadRequest || !strings.Contains(body, "above the daemon limit") {
		t.Fatalf("buffered 100k-cell sweep: %d %s, want a 400 cap rejection", status, body)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/sweep",
		strings.NewReader(`{`+grid+`,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed 100k-cell sweep: %d", resp.StatusCode)
	}
	scan := bufio.NewScanner(resp.Body)
	if !scan.Scan() {
		t.Fatalf("no header line: %v", scan.Err())
	}
	var head SweepStreamHeader
	if err := json.Unmarshal(scan.Bytes(), &head); err != nil {
		t.Fatalf("header %q: %v", scan.Text(), err)
	}
	if head.Cells < 100_000 {
		t.Fatalf("grid has %d cells, the test wants >= 100k", head.Cells)
	}
	// Rows arriving while >99% of the grid is still unevaluated is the
	// streaming proof: a buffering server could not produce them yet.
	for i := 0; i < 2; i++ {
		if !scan.Scan() {
			t.Fatalf("row %d never arrived: %v", i, scan.Err())
		}
		var row SweepRow
		if err := json.Unmarshal(scan.Bytes(), &row); err != nil {
			t.Fatalf("row %d %q: %v", i, scan.Text(), err)
		}
		if row.Tasks != 40 || row.Procs != 3 {
			t.Fatalf("row %d = %+v", i, row)
		}
	}
	cancel()
	// The server must tear the response down promptly once the client
	// is gone; draining the remainder must not take anywhere near the
	// full 100k-cell compute time.
	start := time.Now()
	for scan.Scan() {
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("stream took %s to terminate after cancellation", d)
	}
}

// TestHTTPClientDisconnectIs499 pins the accounting fix: a request
// whose own context is cancelled (the client hung up) is recorded as
// 499, not as a 5xx server failure, and the disconnect is logged.
func TestHTTPClientDisconnectIs499(t *testing.T) {
	var logged atomic.Int64
	h := NewHandler(NewService(), WithLogf(func(string, ...any) { logged.Add(1) }))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/plan",
		strings.NewReader(`{"family":"genome","tasks":40,"procs":3}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want %d", w.Code, statusClientClosedRequest)
	}
	if logged.Load() == 0 {
		t.Fatal("disconnect was not logged")
	}
}

// TestErrorStatusServerCancellationStays503 pins the other half of the
// split: a cancellation that did NOT come from the request context —
// server shutdown, a deadline — still maps to 503.
func TestErrorStatusServerCancellationStays503(t *testing.T) {
	if got := errorStatus(context.Canceled); got != http.StatusServiceUnavailable {
		t.Fatalf("canceled: %d, want 503", got)
	}
	if got := errorStatus(context.DeadlineExceeded); got != http.StatusServiceUnavailable {
		t.Fatalf("deadline: %d, want 503", got)
	}
	// And a live request whose error is a cancellation from elsewhere
	// (request context still fine) is not a client disconnect.
	r := httptest.NewRequest(http.MethodPost, "/v1/plan", nil)
	if clientGone(r, context.Canceled) {
		t.Fatal("cancellation with a live request context classified as a disconnect")
	}
}

// TestWriteJSONSurfacesEncodeFailure pins the writeJSON bugfix: an
// encode failure — previously discarded — reaches the handler's
// logger.
func TestWriteJSONSurfacesEncodeFailure(t *testing.T) {
	var msgs []string
	cfg := handlerConfig{logf: func(format string, args ...any) {
		msgs = append(msgs, fmt.Sprintf(format, args...))
	}}
	cfg.writeJSON(httptest.NewRecorder(), http.StatusOK, map[string]any{"bad": make(chan int)})
	if len(msgs) != 1 || !strings.Contains(msgs[0], "unsupported type") {
		t.Fatalf("logged %q, want one unsupported-type encode error", msgs)
	}
}

// TestSweepConfigClampsWorkers pins the daemon-side clamp: a client
// cannot size the sweep goroutine pool (and with it the streaming
// reorder window) beyond the host's cores.
func TestSweepConfigClampsWorkers(t *testing.T) {
	for _, workers := range []int{-5, runtime.GOMAXPROCS(0) + 1, 1 << 20} {
		cfg, err := SweepRequest{Workers: workers}.sweepConfig(maxSweepCells)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Workers != 0 {
			t.Fatalf("workers %d passed through as %d, want clamp to 0 (all cores)", workers, cfg.Workers)
		}
	}
	cfg, err := SweepRequest{Workers: 1}.sweepConfig(maxSweepCells)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 1 {
		t.Fatalf("in-range workers 1 became %d", cfg.Workers)
	}
}
