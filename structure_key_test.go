package hanccr

import (
	"errors"
	"strings"
	"testing"
)

// keyGrid is a scenario set that perturbs every knob Key hashes, one at
// a time from a common base, plus injected-document variants — the
// probe set for the two-level identity properties.
func keyGrid() []Scenario {
	grid := []Scenario{
		NewScenario(),
		// Structure knobs.
		NewScenario(WithFamily("montage")),
		NewScenario(WithFamily("ligo")),
		NewScenario(WithFamily("ligo"), WithRagged(true)),
		NewScenario(WithTasks(50)),
		NewScenario(WithProcs(5)),
		NewScenario(WithSeed(7)),
		// Parameter knobs.
		NewScenario(WithPFail(0.01)),
		NewScenario(WithCCR(0.5)),
		NewScenario(WithBandwidth(2e8)),
		NewScenario(WithStrategy(CkptAll)),
		NewScenario(WithStrategy(CkptNone)),
		NewScenario(WithStrategy(ExitOnly)),
		NewScenario(WithExactCostModel()),
		// Mixed: one structure knob and one parameter knob together.
		NewScenario(WithSeed(7), WithPFail(0.01)),
		// Injected documents.
		NewScenario(WithWorkflow("inline", "json", []byte(`{"tasks":[{"id":0,"work":1}]}`)), WithProcs(3)),
		NewScenario(WithWorkflow("inline", "dax", []byte(`<adag></adag>`)), WithProcs(3)),
		NewScenario(WithWorkflow("other", "json", []byte(`{"tasks":[{"id":0,"work":1}]}`)), WithProcs(3)),
		NewScenario(WithWorkflow("inline", "json", []byte(`{"tasks":[{"id":0,"work":2}]}`)), WithProcs(3)),
	}
	return grid
}

// TestKeySplitInjective pins the two-level identity contract: over the
// probe grid, two scenarios have equal Key exactly when they have equal
// (StructureKey, ParamKey) — the split loses nothing and invents
// nothing. This is what lets the Service address one plan by two keys
// without ever serving the wrong parameter variant from a scaffold.
func TestKeySplitInjective(t *testing.T) {
	grid := keyGrid()
	for i := 0; i < len(grid); i++ {
		for j := i + 1; j < len(grid); j++ {
			a, b := grid[i], grid[j]
			sameKey := a.Key() == b.Key()
			samePair := a.StructureKey() == b.StructureKey() && a.ParamKey() == b.ParamKey()
			if sameKey != samePair {
				t.Errorf("grid[%d] vs grid[%d]: Key equal = %v but (StructureKey, ParamKey) equal = %v",
					i, j, sameKey, samePair)
			}
		}
	}
}

// TestStructureKeyIgnoresParameters pins the fast path's premise:
// parameter-only variants of one scenario share a StructureKey (so they
// share a scaffold) while their ParamKeys — and full Keys — all differ.
func TestStructureKeyIgnoresParameters(t *testing.T) {
	base := NewScenario(WithFamily("genome"), WithTasks(40), WithProcs(3), WithSeed(7))
	variants := []Scenario{
		NewScenario(WithFamily("genome"), WithTasks(40), WithProcs(3), WithSeed(7), WithPFail(0.01)),
		NewScenario(WithFamily("genome"), WithTasks(40), WithProcs(3), WithSeed(7), WithCCR(0.5)),
		NewScenario(WithFamily("genome"), WithTasks(40), WithProcs(3), WithSeed(7), WithBandwidth(2e8)),
		NewScenario(WithFamily("genome"), WithTasks(40), WithProcs(3), WithSeed(7), WithStrategy(CkptAll)),
		NewScenario(WithFamily("genome"), WithTasks(40), WithProcs(3), WithSeed(7), WithExactCostModel()),
	}
	seenParam := map[string]bool{base.ParamKey(): true}
	seenKey := map[string]bool{base.Key(): true}
	for i, v := range variants {
		if v.StructureKey() != base.StructureKey() {
			t.Errorf("variant %d: StructureKey changed with a parameter knob", i)
		}
		if seenParam[v.ParamKey()] {
			t.Errorf("variant %d: ParamKey collides with an earlier variant", i)
		}
		if seenKey[v.Key()] {
			t.Errorf("variant %d: Key collides with an earlier variant", i)
		}
		seenParam[v.ParamKey()] = true
		seenKey[v.Key()] = true
	}
	// And the converse: every structure knob moves the StructureKey.
	structural := []Scenario{
		NewScenario(WithFamily("montage"), WithTasks(40), WithProcs(3), WithSeed(7)),
		NewScenario(WithFamily("genome"), WithTasks(41), WithProcs(3), WithSeed(7)),
		NewScenario(WithFamily("genome"), WithTasks(40), WithProcs(4), WithSeed(7)),
		NewScenario(WithFamily("genome"), WithTasks(40), WithProcs(3), WithSeed(8)),
	}
	for i, v := range structural {
		if v.StructureKey() == base.StructureKey() {
			t.Errorf("structural variant %d shares the base StructureKey", i)
		}
	}
}

// TestStructureKeyDistinctDocuments pins the injected-document half of
// the structure identity: documents that differ in content, name or
// format never share a StructureKey, including pairs built to move
// bytes across the name/document field boundary. A collision here would
// let the scaffold cache serve one uploaded workflow's schedule for a
// different uploaded workflow.
func TestStructureKeyDistinctDocuments(t *testing.T) {
	docs := []Scenario{
		NewScenario(WithWorkflow("inline", "json", []byte(`{"tasks":[{"id":0,"work":1}]}`))),
		NewScenario(WithWorkflow("inline", "json", []byte(`{"tasks":[{"id":0,"work":2}]}`))),
		NewScenario(WithWorkflow("inline2", "json", []byte(`{"tasks":[{"id":0,"work":1}]}`))),
		NewScenario(WithWorkflow("inline", "dax", []byte(`{"tasks":[{"id":0,"work":1}]}`))),
		// The boundary-move pair from the Key() collision test: bytes
		// shifted between the name and the document.
		NewScenario(WithWorkflow("n", "json", []byte("PAYLOAD-A|format=json|doc=42:rest"))),
		NewScenario(WithWorkflow("n|format=json|doc=42:PAYLOAD-A", "json", []byte("rest"))),
		// A generated scenario must never collide with an injected one.
		NewScenario(),
	}
	seen := map[string]int{}
	for i, sc := range docs {
		k := sc.StructureKey()
		if j, dup := seen[k]; dup {
			t.Errorf("documents %d and %d share a StructureKey", j, i)
		}
		seen[k] = i
	}
}

// TestScenarioKeyFormatBoundaryCollisionFixed pins the format
// length-prefix fix. Under the old encoding the format field was the
// one unprefixed variable-length field in the preimage, so these two
// hand-built scenarios hashed the identical byte stream
//
//	...|src=1:n|format=j|doc=9:X|doc=1:Y
//
// by moving "|doc=9:X" between the format and the document. The
// constructor path cannot build them (WithWorkflow pins format to
// json/dax — which keep their historical bare encoding, per the golden
// keys), but the preimage must be injective for every representable
// value, not just the reachable ones: a future format joins the closed
// set by being added here, not by reopening the hole.
func TestScenarioKeyFormatBoundaryCollisionFixed(t *testing.T) {
	mk := func(format string, doc []byte) Scenario {
		sc := NewScenario()
		sc.source = "n"
		sc.format = format
		sc.graph = doc
		return sc
	}
	a := mk("j", []byte("X|doc=1:Y"))
	b := mk("j|doc=9:X", []byte("Y"))
	if a.Key() == b.Key() {
		t.Fatal("scenario keys collide across the format/document boundary")
	}
	if a.StructureKey() == b.StructureKey() {
		t.Fatal("structure keys collide across the format/document boundary")
	}
}

// TestParseMethodStrategy pins the case-insensitive parsers: canonical
// names round-trip, any casing canonicalizes, unknowns fail with the
// typed sentinel naming the accepted set.
func TestParseMethodStrategy(t *testing.T) {
	for _, m := range Methods() {
		for _, in := range []string{string(m), strings.ToLower(string(m)), strings.ToUpper(string(m))} {
			got, err := ParseMethod(in)
			if err != nil || got != m {
				t.Errorf("ParseMethod(%q) = %q, %v; want %q", in, got, err, m)
			}
		}
	}
	for _, st := range Strategies() {
		for _, in := range []string{string(st), strings.ToLower(string(st)), strings.ToUpper(string(st))} {
			got, err := ParseStrategy(in)
			if err != nil || got != st {
				t.Errorf("ParseStrategy(%q) = %q, %v; want %q", in, got, err, st)
			}
		}
	}
	if _, err := ParseMethod("Gaussian"); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("ParseMethod(Gaussian) = %v, want ErrUnknownMethod", err)
	}
	if _, err := ParseStrategy("CkptMost"); !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("ParseStrategy(CkptMost) = %v, want ErrUnknownStrategy", err)
	}
	if _, err := ParseMethod(""); err == nil {
		t.Error("ParseMethod(\"\") succeeded")
	}
}
