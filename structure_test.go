package hanccr

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
)

// paramVariants returns n parameter-only variants of one structure:
// same family/tasks/procs/seed, distinct (pfail, ccr, strategy) tails.
func paramVariants(fam string, seed int64, n int) []Scenario {
	strategies := []Strategy{CkptSome, CkptAll, CkptNone}
	out := make([]Scenario, n)
	for i := range out {
		out[i] = NewScenario(
			WithFamily(fam), WithTasks(40), WithProcs(3), WithSeed(seed),
			WithPFail(0.001*float64(1+i%4)), WithCCR(0.01*float64(1+i/4)),
			WithStrategy(strategies[i%len(strategies)]),
		)
	}
	return out
}

// TestScaffoldSharedAcrossParamVariants pins the scaffold cache's
// soundness premise directly at the builder: every parameter variant of
// one structure builds the identical scaffold — same superchain
// processor assignment, same chain archive, same redundant-edge count —
// so reusing the first variant's scaffold for the rest can never change
// a schedule.
func TestScaffoldSharedAcrossParamVariants(t *testing.T) {
	ctx := context.Background()
	variants := paramVariants("genome", 7, 6)
	base, err := buildScaffold(ctx, variants[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(base.chains) == 0 || len(base.procs) != len(base.chains) {
		t.Fatalf("implausible scaffold: %d procs, %d chains", len(base.procs), len(base.chains))
	}
	for i, sc := range variants[1:] {
		if sc.StructureKey() != variants[0].StructureKey() {
			t.Fatalf("variant %d is not a parameter-only variant", i+1)
		}
		sf, err := buildScaffold(ctx, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sf.procs, base.procs) || !reflect.DeepEqual(sf.chains, base.chains) {
			t.Fatalf("variant %d built a different schedule scaffold", i+1)
		}
		if sf.redundant != base.redundant {
			t.Fatalf("variant %d: redundant = %d, want %d", i+1, sf.redundant, base.redundant)
		}
	}
}

// TestStructureHitBitIdentical is the fast path's core guarantee: plans
// served via a resident scaffold are byte-identical (the persistent
// store's canonical encoding) to the same scenarios planned by a
// scaffold-free reference service, across shard counts and batch worker
// counts. Run under -race by make check, this is also the data-race
// proof for the scaffold cache and the scaffold-sharing planning tail.
func TestStructureHitBitIdentical(t *testing.T) {
	ctx := context.Background()
	// Two structures × 6 parameter variants each: every combo below sees
	// exactly 2 scaffold builds and 10 structure-hits (each scenario's
	// plan key is unique, so per structure one request initiates the
	// build — serially the first, concurrently whichever wins — and the
	// rest find or coalesce onto it).
	var scenarios []Scenario
	scenarios = append(scenarios, paramVariants("genome", 3, 6)...)
	scenarios = append(scenarios, paramVariants("montage", 5, 6)...)

	// Scaffold-free reference: WithPlanner(NewPlan) disables the fast
	// path without otherwise changing the service.
	refSvc := NewService(WithPlanner(NewPlan))
	if st := refSvc.Stats(); st.StructureCapacity != 0 {
		t.Fatalf("WithPlanner service still has a structure cache: %+v", st)
	}
	refs := make([][]byte, len(scenarios))
	for i, sc := range scenarios {
		p, outcome, err := refSvc.PlanDetail(ctx, sc)
		if err != nil {
			t.Fatal(err)
		}
		if outcome != CacheMiss {
			t.Fatalf("reference request %d: outcome %q, want miss", i, outcome)
		}
		refs[i], err = encodePlan(p)
		if err != nil {
			t.Fatal(err)
		}
	}

	jobs := make([]Job, len(scenarios))
	for i, sc := range scenarios {
		jobs[i] = Job{Kind: JobPlan, Scenario: sc}
	}
	workerCounts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, shards := range []int{1, 4} {
		for _, workers := range workerCounts {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				svc := NewService(WithShards(shards))
				results, err := svc.Batch(ctx, jobs, WithBatchWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range results {
					if r.Err != nil {
						t.Fatal(r.Err)
					}
					got, err := encodePlan(r.Plan)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, refs[i]) {
						t.Fatalf("scenario %d: fast-path plan differs from scaffold-free reference", i)
					}
					if r.Outcome == CacheHit {
						t.Fatalf("scenario %d: full hit on distinct keys", i)
					}
				}
				st := svc.Stats()
				if want := uint64(len(scenarios) - 2); st.StructureHits != want {
					t.Fatalf("structure_hits = %d, want %d (misses %d)", st.StructureHits, want, st.Misses)
				}
				if st.StructureEntries != 2 {
					t.Fatalf("structure_entries = %d, want 2", st.StructureEntries)
				}
			})
		}
	}
}

// TestServicePlanDetailOutcomes walks one scenario family through the
// three-valued outcome contract: cold structure = miss, parameter
// variant = structure-hit, repeat = hit — with the stats counters
// moving in lockstep.
func TestServicePlanDetailOutcomes(t *testing.T) {
	ctx := context.Background()
	svc := NewService()
	base := smallScenario("genome", 7, CkptSome)
	variant := NewScenario(
		WithFamily("genome"), WithTasks(40), WithProcs(3), WithSeed(7),
		WithStrategy(CkptSome), WithPFail(0.01),
	)

	cold, outcome, err := svc.PlanDetail(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != CacheMiss {
		t.Fatalf("cold outcome = %q, want miss", outcome)
	}
	near, outcome, err := svc.PlanDetail(ctx, variant)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != CacheStructureHit {
		t.Fatalf("near-duplicate outcome = %q, want structure-hit", outcome)
	}
	if outcome.Hit() {
		t.Fatal("a structure-hit must project to Hit() == false: the plan was computed by this call")
	}
	if near == cold {
		t.Fatal("parameter variant returned the base plan instance")
	}
	warm, outcome, err := svc.PlanDetail(ctx, variant)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != CacheHit || warm != near {
		t.Fatalf("repeat outcome = %q (same instance: %v), want hit of the same plan", outcome, warm == near)
	}
	st := svc.Stats()
	if st.Misses != 2 || st.Hits != 1 || st.StructureHits != 1 {
		t.Fatalf("stats = %+v, want 2 misses / 1 hit / 1 structure-hit", st)
	}
	if st.StructureEntries != 1 || st.StructureCapacity != DefaultStructureCacheCapacity {
		t.Fatalf("scaffold cache = %d/%d, want 1/%d", st.StructureEntries, st.StructureCapacity, DefaultStructureCacheCapacity)
	}
}

// TestStructureCacheDisabled pins the opt-out: WithStructureCache(0)
// restores the pre-split behavior exactly — every miss runs the full
// cold pipeline, no scaffold is cached, no outcome is a structure-hit —
// and the disabled service still answers bit-identically.
func TestStructureCacheDisabled(t *testing.T) {
	ctx := context.Background()
	svc := NewService(WithStructureCache(0))
	for i, sc := range paramVariants("genome", 9, 4) {
		p, outcome, err := svc.PlanDetail(ctx, sc)
		if err != nil {
			t.Fatal(err)
		}
		if outcome != CacheMiss {
			t.Fatalf("request %d: outcome = %q, want miss with the fast path disabled", i, outcome)
		}
		ref, err := NewPlan(ctx, sc)
		if err != nil {
			t.Fatal(err)
		}
		if p.ExpectedMakespan() != ref.ExpectedMakespan() {
			t.Fatalf("request %d: EM %.17g != reference %.17g", i, p.ExpectedMakespan(), ref.ExpectedMakespan())
		}
	}
	st := svc.Stats()
	if st.StructureHits != 0 || st.StructureEntries != 0 || st.StructureCapacity != 0 {
		t.Fatalf("disabled fast path left scaffold state: %+v", st)
	}
}

// TestStructureCacheBounded pins the scaffold LRU's capacity: with room
// for one scaffold, a second structure evicts the first, and replanning
// a variant of the evicted structure rebuilds (miss) instead of hitting.
func TestStructureCacheBounded(t *testing.T) {
	ctx := context.Background()
	svc := NewService(WithShards(1), WithStructureCache(1))
	a := paramVariants("genome", 1, 2)
	b := paramVariants("montage", 2, 1)

	if _, outcome, err := svc.PlanDetail(ctx, a[0]); err != nil || outcome != CacheMiss {
		t.Fatalf("a[0]: %q, %v", outcome, err)
	}
	if _, outcome, err := svc.PlanDetail(ctx, b[0]); err != nil || outcome != CacheMiss {
		t.Fatalf("b[0]: %q, %v", outcome, err)
	}
	if st := svc.Stats(); st.StructureEntries != 1 {
		t.Fatalf("structure_entries = %d, want 1 (capacity 1)", st.StructureEntries)
	}
	// a's scaffold was evicted by b's: a parameter variant of a is a
	// plain miss again (and re-warms the scaffold cache).
	if _, outcome, err := svc.PlanDetail(ctx, a[1]); err != nil || outcome != CacheMiss {
		t.Fatalf("a[1] after eviction: %q, %v (want miss)", outcome, err)
	}
	if st := svc.Stats(); st.StructureHits != 0 {
		t.Fatalf("structure_hits = %d, want 0", st.StructureHits)
	}
}

// TestHTTPXCacheThreeValues drives the three-valued X-Cache contract
// through the real handler: miss on a cold structure, structure-hit on
// a parameter variant, hit on a repeat — and the structure-hit body is
// byte-identical to the same request against a scaffold-free daemon.
func TestHTTPXCacheThreeValues(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewService()))
	defer srv.Close()
	refSrv := httptest.NewServer(NewHandler(NewService(WithPlanner(NewPlan))))
	defer refSrv.Close()

	cold := `{"family":"genome","tasks":40,"procs":3,"seed":7}`
	variant := `{"family":"genome","tasks":40,"procs":3,"seed":7,"pfail":0.01}`

	status, _, hdr := postJSON(t, srv.Client(), srv.URL+"/v1/plan", cold)
	if status != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("cold: %d, X-Cache %q", status, hdr.Get("X-Cache"))
	}
	status, body, hdr := postJSON(t, srv.Client(), srv.URL+"/v1/plan", variant)
	if status != http.StatusOK || hdr.Get("X-Cache") != "structure-hit" {
		t.Fatalf("variant: %d, X-Cache %q", status, hdr.Get("X-Cache"))
	}
	status, refBody, refHdr := postJSON(t, refSrv.Client(), refSrv.URL+"/v1/plan", variant)
	if status != http.StatusOK || refHdr.Get("X-Cache") != "miss" {
		t.Fatalf("reference variant: %d, X-Cache %q", status, refHdr.Get("X-Cache"))
	}
	if body != refBody {
		t.Fatalf("structure-hit body differs from scaffold-free reference:\nfast: %s\nref:  %s", body, refBody)
	}
	status, repeat, hdr := postJSON(t, srv.Client(), srv.URL+"/v1/plan", variant)
	if status != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("repeat: %d, X-Cache %q", status, hdr.Get("X-Cache"))
	}
	if repeat != body {
		t.Fatal("hit body differs from the structure-hit that filled it")
	}
}

// TestHTTPStatsNestedGroups pins the /v1/stats v2 schema: the version
// marker, the four nested groups, and — for one deprecation cycle — the
// flat v1 keys beside them, byte-compatible with old dashboards.
func TestHTTPStatsNestedGroups(t *testing.T) {
	svc := NewService()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	// One miss + one structure-hit + one hit of known shape.
	for _, body := range []string{
		`{"family":"genome","tasks":40,"procs":3,"seed":7}`,
		`{"family":"genome","tasks":40,"procs":3,"seed":7,"pfail":0.01}`,
		`{"family":"genome","tasks":40,"procs":3,"seed":7,"pfail":0.01}`,
	} {
		if status, resp, _ := postJSON(t, srv.Client(), srv.URL+"/v1/plan", body); status != http.StatusOK {
			t.Fatalf("plan: %d %s", status, resp)
		}
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if string(got["schema_version"]) != "2" {
		t.Fatalf("schema_version = %s, want 2", got["schema_version"])
	}
	var cache CacheGroup
	if err := json.Unmarshal(got["cache"], &cache); err != nil {
		t.Fatalf("cache group: %v", err)
	}
	if cache.Hits != 1 || cache.Misses != 2 || cache.Entries != 2 {
		t.Fatalf("cache group = %+v, want 1 hit / 2 misses / 2 entries", cache)
	}
	var structure StructureCacheGroup
	if err := json.Unmarshal(got["structure_cache"], &structure); err != nil {
		t.Fatalf("structure_cache group: %v", err)
	}
	if !structure.Enabled || structure.Hits != 1 || structure.Entries != 1 {
		t.Fatalf("structure_cache group = %+v, want enabled with 1 hit / 1 entry", structure)
	}
	for _, group := range []string{"store", "gate"} {
		if _, ok := got[group]; !ok {
			t.Fatalf("missing %q group", group)
		}
	}
	// Flat v1 keys, still present for one release (deprecated).
	for _, flat := range []string{"hits", "misses", "entries", "capacity", "shed", "store_hits", "structure_hits"} {
		if _, ok := got[flat]; !ok {
			t.Fatalf("missing deprecated flat key %q", flat)
		}
	}
	want := statsResponse(svc.Stats())
	var flatHits uint64
	if err := json.Unmarshal(got["hits"], &flatHits); err != nil || flatHits != want.Cache.Hits {
		t.Fatalf("flat hits = %d (%v), want %d", flatHits, err, want.Cache.Hits)
	}
}

// TestHTTPEstimateParsesMethodCaseInsensitive pins satellite wiring:
// the estimate endpoint canonicalizes the method name via ParseMethod
// (echoing the canonical spelling) and rejects unknown methods with the
// typed 400, naming the accepted set.
func TestHTTPEstimateParsesMethodCaseInsensitive(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewService()))
	defer srv.Close()

	status, body, _ := postJSON(t, srv.Client(), srv.URL+"/v1/estimate",
		`{"family":"genome","tasks":40,"procs":3,"seed":7,"method":"dodin"}`)
	if status != http.StatusOK {
		t.Fatalf("lower-case method: %d %s", status, body)
	}
	var er EstimateResponse
	if err := json.Unmarshal([]byte(body), &er); err != nil {
		t.Fatal(err)
	}
	if er.Method != string(Dodin) {
		t.Fatalf("echoed method = %q, want canonical %q", er.Method, Dodin)
	}
	status, body, _ = postJSON(t, srv.Client(), srv.URL+"/v1/estimate",
		`{"family":"genome","tasks":40,"procs":3,"seed":7,"method":"Gaussian"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown method: %d %s, want 400", status, body)
	}
	status, body, _ = postJSON(t, srv.Client(), srv.URL+"/v1/plan",
		`{"family":"genome","tasks":40,"procs":3,"seed":7,"strategy":"ckptall"}`)
	if status != http.StatusOK {
		t.Fatalf("lower-case strategy: %d %s, want 200", status, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Strategy != string(CkptAll) {
		t.Fatalf("plan strategy = %q, want canonical %q", pr.Strategy, CkptAll)
	}
}
