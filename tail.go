package hanccr

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// DefaultTailInterval is how often a follow-mode tailer polls a file
// that currently has no new complete line. Poll-based (no fsnotify, no
// cgo) keeps the tailer stdlib-only and portable; a quarter second is
// far below any cache-warming latency that matters while costing one
// stat per idle tick.
const DefaultTailInterval = 250 * time.Millisecond

// tailReconnectBackoff is how long the HTTP tailer waits before
// re-dialing a peer whose /v1/log stream dropped or refused.
const tailReconnectBackoff = 500 * time.Millisecond

// TailOption configures TailLog.
type TailOption func(*tailConfig)

type tailConfig struct {
	offset   int64
	interval time.Duration
	follow   bool
	onSkip   func(line []byte, err error)
}

// TailFrom starts the tail at the given byte offset instead of the
// start of the file. An offset beyond the current file size (the file
// was truncated or rotated since the offset was taken) restarts from
// the beginning rather than waiting for the file to regrow past it.
func TailFrom(offset int64) TailOption {
	return func(c *tailConfig) {
		if offset > 0 {
			c.offset = offset
		}
	}
}

// TailInterval sets the idle poll interval (default
// DefaultTailInterval).
func TailInterval(d time.Duration) TailOption {
	return func(c *tailConfig) {
		if d > 0 {
			c.interval = d
		}
	}
}

// TailOnce stops at the current end of the file instead of following
// appends — a snapshot read with the tailer's partial-line tolerance.
func TailOnce() TailOption {
	return func(c *tailConfig) { c.follow = false }
}

// TailOnSkip registers a callback for lines the tailer drops: blank
// recovery lines, salvaged write fragments and anything else that does
// not parse as a ScenarioRequest. A live log is allowed to contain
// them (see ScenarioLog.Record), so the tailer skips instead of
// aborting the way the strict boot-time WarmFromLog does.
func TailOnSkip(fn func(line []byte, err error)) TailOption {
	return func(c *tailConfig) { c.onSkip = fn }
}

// TailLog follows the JSONL scenario log at path, invoking fn for
// every complete, parseable ScenarioRequest line — the continuous
// counterpart of Service.WarmFromLog's one-shot replay. It polls
// (stdlib-only, no fsnotify): a partially written last line is never
// delivered, only retried once its newline lands; unparseable lines
// (blank recovery lines, salvaged fragments of a failed write) are
// skipped, not fatal. A file that does not exist yet is waited for.
//
// TailLog returns when fn returns an error (that error), when ctx is
// done (ctx.Err()), or — under TailOnce — when the end of the file is
// reached (nil).
func TailLog(ctx context.Context, path string, fn func(ScenarioRequest) error, opts ...TailOption) error {
	cfg := tailConfig{interval: DefaultTailInterval, follow: true}
	for _, o := range opts {
		o(&cfg)
	}
	return tailLines(ctx, path, cfg, func(line []byte) error {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			return nil
		}
		var req ScenarioRequest
		if err := json.Unmarshal(trimmed, &req); err != nil {
			if cfg.onSkip != nil {
				cfg.onSkip(line, err)
			}
			return nil
		}
		return fn(req)
	})
}

// tailLines is the byte-level core under TailLog and GET /v1/log: it
// streams the complete lines of the file at path (newline stripped)
// from cfg.offset, polling for growth in follow mode. Offsets are
// plain file offsets, so a consumer that counts len(line)+1 per line
// can resume exactly where it stopped.
func tailLines(ctx context.Context, path string, cfg tailConfig, emit func(line []byte) error) error {
	if cfg.interval <= 0 {
		cfg.interval = DefaultTailInterval
	}
	var (
		f       *os.File
		pos     int64 // file offset of the next byte to read
		pending []byte
		discard bool // inside an over-long line: drop bytes until its newline
		buf     = make([]byte, 64*1024)
	)
	defer func() {
		if f != nil {
			f.Close() //hanccr:allow discarderr log tailed read-only; a close error cannot lose data we only read
		}
	}()

	sleep := func() error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(cfg.interval):
			return nil
		}
	}

	// open (re)opens the file and clamps the resume offset to its size:
	// a shrunken file means truncation or rotation, and replaying from
	// the start beats waiting forever for bytes that will never return.
	open := func() error {
		var err error
		f, err = os.Open(path)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close() //hanccr:allow discarderr read-only error-path cleanup; the Stat error is what the caller sees
			f = nil
			return err
		}
		if cfg.offset > st.Size() {
			cfg.offset = 0
		}
		if _, err := f.Seek(cfg.offset, io.SeekStart); err != nil {
			f.Close() //hanccr:allow discarderr read-only error-path cleanup; the Seek error is what the caller sees
			f = nil
			return err
		}
		pos = cfg.offset
		pending = pending[:0]
		discard = false
		return nil
	}

	for f == nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := open()
		if err == nil {
			break
		}
		if !os.IsNotExist(err) {
			return err
		}
		if !cfg.follow {
			return nil // snapshot of a log that does not exist yet: empty
		}
		if err := sleep(); err != nil {
			return err
		}
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, rerr := f.Read(buf)
		if n > 0 {
			pending = append(pending, buf[:n]...)
			pos += int64(n)
			for {
				i := bytes.IndexByte(pending, '\n')
				if i < 0 {
					break
				}
				line := pending[:i]
				if discard {
					// The newline ends the over-long line whose head was
					// already dropped; its tail must not surface as a line.
					discard = false
				} else if err := emit(line); err != nil {
					return err
				}
				pending = pending[i+1:]
			}
			// A "line" beyond any legal log entry will never parse; drop
			// it now so a corrupt or hostile file cannot grow the pending
			// buffer without bound (discard mode keeps dropping until the
			// line's newline finally arrives).
			if len(pending) > maxScenarioLogLine {
				if !discard && cfg.onSkip != nil {
					cfg.onSkip(pending, bufio.ErrTooLong)
				}
				discard = true
				pending = pending[:0]
			}
			continue
		}
		if rerr != nil && rerr != io.EOF {
			return rerr
		}
		// EOF: the file has no complete new line right now.
		if !cfg.follow {
			return nil
		}
		if err := sleep(); err != nil {
			return err
		}
		// Detect truncation/rotation while idle: if the file shrank below
		// our read position, reopen from the start.
		st, err := os.Stat(path)
		if err != nil || st.Size() < pos {
			f.Close() //hanccr:allow discarderr read-only reopen after truncation; no written data is at risk
			f = nil
			cfg.offset = 0
			for f == nil {
				if err := ctx.Err(); err != nil {
					return err
				}
				if oerr := open(); oerr == nil {
					break
				} else if !os.IsNotExist(oerr) {
					return oerr
				}
				if serr := sleep(); serr != nil {
					return serr
				}
			}
		}
	}
}

// Follow continuously absorbs a peer's miss-log into this Service's
// plan cache — the cross-process warm path. source is either a JSONL
// file path (shared disk, tailed via TailLog) or an http(s) URL of a
// peer replica (its GET /v1/log NDJSON stream, re-dialled with the
// last byte offset whenever the connection drops). Each absorbed line
// plans through the sharded cache on the same bounded worker pool
// WarmFromLog uses, so a follower replica computes a scenario at most
// once no matter how often the peer re-serves it.
//
// Follow runs until ctx is done and returns how many log lines were
// absorbed (planned cold or already warm) and how many failed to plan,
// plus ctx.Err().
func (s *Service) Follow(ctx context.Context, source string, workers int) (absorbed, failed int, err error) {
	ch, wait := s.warmPool(ctx, workers)
	feed := func(req ScenarioRequest) error {
		// req.Scenario() clones any injected document out of the tail
		// buffer, so the next line cannot corrupt a queued scenario.
		select {
		case ch <- req.Scenario():
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	var terr error
	if strings.HasPrefix(source, "http://") || strings.HasPrefix(source, "https://") {
		terr = tailHTTPLog(ctx, source, feed)
	} else {
		terr = TailLog(ctx, source, feed)
	}
	close(ch)
	absorbed, failed, abortErr := wait()
	switch {
	case terr != nil && !errors.Is(terr, context.Canceled):
		return absorbed, failed, terr
	case abortErr != nil && !errors.Is(abortErr, context.Canceled):
		return absorbed, failed, abortErr
	default:
		return absorbed, failed, ctx.Err()
	}
}

// tailHTTPLog follows a peer replica's GET /v1/log NDJSON stream,
// reconnecting with the last consumed byte offset whenever the
// connection drops (peer restart, network blip, drain-time 503). The
// offset advances only on complete (newline-terminated) lines, so a
// reconnect can never skip or split a record. Unparseable lines are
// skipped like the file tailer's.
func tailHTTPLog(ctx context.Context, source string, fn func(ScenarioRequest) error) error {
	base := strings.TrimRight(source, "/")
	if !strings.HasSuffix(base, "/v1/log") {
		base += "/v1/log"
	}
	client := &http.Client{} // no global timeout: the stream is long-lived
	var offset int64
	sleep := func() error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(tailReconnectBackoff):
			return nil
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		url := fmt.Sprintf("%s?follow=1&offset=%d", base, offset)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if err := sleep(); err != nil {
				return err
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// 503 while the peer drains, 404 while its log is not yet
			// configured — both are "try again later", not fatal.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //hanccr:allow discarderr best-effort bounded drain before retrying the peer; nothing to resend
			resp.Body.Close()
			if err := sleep(); err != nil {
				return err
			}
			continue
		}
		br := bufio.NewReaderSize(resp.Body, 64*1024)
		for {
			line, rerr := br.ReadBytes('\n')
			if rerr == nil || (rerr == io.EOF && len(line) > 0 && line[len(line)-1] == '\n') {
				offset += int64(len(line))
				trimmed := bytes.TrimSpace(line)
				if len(trimmed) > 0 {
					var sreq ScenarioRequest
					if uerr := json.Unmarshal(trimmed, &sreq); uerr == nil {
						if ferr := fn(sreq); ferr != nil {
							resp.Body.Close()
							return ferr
						}
					}
				}
				if rerr == nil {
					continue
				}
			}
			// Stream ended (EOF, reset, ctx cancellation). A trailing
			// partial line is NOT counted into offset: the reconnect
			// re-requests it from its first byte.
			resp.Body.Close()
			break
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err := sleep(); err != nil {
			return err
		}
	}
}
