package hanccr

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// tailTestInterval keeps the poll loops snappy under test.
const tailTestInterval = 10 * time.Millisecond

func mustRecord(t *testing.T, l *ScenarioLog, body string) {
	t.Helper()
	var req ScenarioRequest
	mustUnmarshalScenario(t, body, &req)
	if err := l.Record(req); err != nil {
		t.Fatalf("record %s: %v", body, err)
	}
}

func mustUnmarshalScenario(t *testing.T, body string, dst *ScenarioRequest) {
	t.Helper()
	if err := json.Unmarshal([]byte(body), dst); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
}

// TestTailLogFollowsAppends pins the follow contract: records appended
// after the tailer started are delivered without reopening anything.
func TestTailLogFollowsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	l, err := OpenScenarioLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustRecord(t, l, `{"family":"genome","tasks":40,"procs":3,"seed":1}`)

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan ScenarioRequest, 16)
	done := make(chan error, 1)
	go func() {
		done <- TailLog(ctx, path, func(req ScenarioRequest) error {
			got <- req
			return nil
		}, TailInterval(tailTestInterval))
	}()

	recv := func() ScenarioRequest {
		t.Helper()
		select {
		case r := <-got:
			return r
		case <-time.After(10 * time.Second):
			t.Fatal("tailer delivered nothing in 10s")
			return ScenarioRequest{}
		}
	}
	if r := recv(); r.Seed == nil || *r.Seed != 1 {
		t.Fatalf("first delivery = %+v, want seed 1", r)
	}
	mustRecord(t, l, `{"family":"montage","tasks":40,"procs":3,"seed":2}`)
	if r := recv(); r.Family != "montage" {
		t.Fatalf("second delivery = %+v, want the appended montage record", r)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("TailLog returned %v, want context.Canceled", err)
	}
}

// TestTailLogOnceAndOffset pins snapshot mode and offset resume: a
// TailOnce read stops at EOF, and TailFrom(offset) skips exactly the
// bytes already consumed — including an offset beyond the file size,
// which restarts from the beginning instead of waiting forever.
func TestTailLogOnceAndOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	l, err := OpenScenarioLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustRecord(t, l, `{"family":"genome","tasks":40,"procs":3,"seed":1}`)
	mustRecord(t, l, `{"family":"genome","tasks":40,"procs":3,"seed":2}`)

	collect := func(opts ...TailOption) []ScenarioRequest {
		t.Helper()
		var out []ScenarioRequest
		opts = append(opts, TailOnce(), TailInterval(tailTestInterval))
		if err := TailLog(context.Background(), path, func(req ScenarioRequest) error {
			out = append(out, req)
			return nil
		}, opts...); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if got := collect(); len(got) != 2 {
		t.Fatalf("snapshot delivered %d records, want 2", len(got))
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Offset of the second record = length of the first line incl \n.
	var firstLine int64
	for i, b := range blob {
		if b == '\n' {
			firstLine = int64(i + 1)
			break
		}
	}
	got := collect(TailFrom(firstLine))
	if len(got) != 1 || got[0].Seed == nil || *got[0].Seed != 2 {
		t.Fatalf("offset resume delivered %+v, want only seed 2", got)
	}
	if got := collect(TailFrom(int64(len(blob)) + 999)); len(got) != 2 {
		t.Fatalf("over-size offset delivered %d records, want a restart from 0 with 2", len(got))
	}
}

// TestTailLogSkipsSalvagedFragment pins the tailer half of the
// short-write recovery contract: a partially written line is never
// delivered while it has no newline, and once a recovery newline turns
// it into a garbage line, the tailer skips it (reporting via
// TailOnSkip) and keeps delivering the records after it.
func TestTailLogSkipsSalvagedFragment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	good1 := `{"family":"genome","tasks":40,"procs":3,"seed":1}` + "\n"
	frag := `{"family":"montage","ta` // half a record, no newline
	if err := os.WriteFile(path, []byte(good1+frag), 0o644); err != nil {
		t.Fatal(err)
	}

	var got []ScenarioRequest
	var skipped int
	opts := []TailOption{TailOnce(), TailInterval(tailTestInterval),
		TailOnSkip(func([]byte, error) { skipped++ })}
	run := func() {
		t.Helper()
		got, skipped = nil, 0
		if err := TailLog(context.Background(), path, func(req ScenarioRequest) error {
			got = append(got, req)
			return nil
		}, opts...); err != nil {
			t.Fatal(err)
		}
	}

	run()
	if len(got) != 1 || skipped != 0 {
		t.Fatalf("with a dangling partial line: delivered %d, skipped %d; want 1 delivered, 0 skipped", len(got), skipped)
	}

	// The writer recovers: newline closes the fragment, then a good record.
	good2 := `{"family":"ligo","tasks":40,"procs":3,"seed":2}` + "\n"
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n" + good2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	run()
	if len(got) != 2 || skipped != 1 {
		t.Fatalf("after recovery: delivered %d, skipped %d; want 2 delivered, 1 skipped", len(got), skipped)
	}
	if got[1].Family != "ligo" {
		t.Fatalf("record after the fragment = %+v, want the ligo one", got[1])
	}
}

// shortWriter wraps a writer and fails exactly the scripted calls:
// partial calls write half the bytes then error (a full disk mid-
// line), total calls write nothing (a permission error). Calls are
// 1-based.
type shortWriter struct {
	mu      sync.Mutex
	w       io.Writer
	calls   int
	partial map[int]bool
	total   map[int]bool
}

func (s *shortWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	switch {
	case s.total[s.calls]:
		return 0, errors.New("injected total write failure")
	case s.partial[s.calls]:
		n, _ := s.w.Write(p[:len(p)/2])
		return n, errors.New("injected short write")
	}
	return s.w.Write(p)
}

// TestTailUnderWriteRace is the satellite race test: one goroutine
// appends records through a ScenarioLog whose writer injects a
// scripted partial write, while Service.Follow tails the same file
// into a second Service. Every successfully recorded miss must land in
// the follower's cache, the counts must match the writer's, and the
// salvaged fragment must be skipped — all under -race.
func TestTailUnderWriteRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Call 8 dies halfway through a record; call 20 writes nothing.
	// (The recovery newline after call 8 is itself a write call, so the
	// scripted calls are spaced apart.)
	sw := &shortWriter{w: f, partial: map[int]bool{8: true}, total: map[int]bool{20: true}}
	slog := NewScenarioLog(sw)

	follower := NewService()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type followResult struct {
		absorbed, failed int
		err              error
	}
	resc := make(chan followResult, 1)
	go func() {
		a, fl, err := follower.Follow(ctx, path, 3)
		resc <- followResult{a, fl, err}
	}()

	const (
		records  = 40
		distinct = 5
	)
	var wrote int // successful records
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < records; i++ {
			seed := i % distinct
			err := slog.Record(ScenarioRequest{Family: "genome", Tasks: 30, Procs: 3, Seed: int64p(int64(seed))})
			if err == nil {
				wrote++
			}
		}
		// Sentinel: a final unique scenario, written last, so the test
		// knows when the follower has caught up with the whole log.
		if err := slog.Record(ScenarioRequest{Family: "genome", Tasks: 30, Procs: 3, Seed: int64p(999)}); err != nil {
			t.Errorf("sentinel record: %v", err)
			return
		}
		wrote++
	}()
	<-writerDone
	if wrote != records-2+1 {
		t.Fatalf("writer recorded %d lines, want %d (two scripted failures)", wrote, records-2+1)
	}

	// Wait until the follower has absorbed every written line: all
	// distinct scenarios resident (incl. the sentinel) and one cache
	// touch per delivered line.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := follower.Stats()
		if st.Entries == distinct+1 && st.Hits+st.Misses == uint64(wrote) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: stats %+v, want %d entries and %d touches", st, distinct+1, wrote)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	res := <-resc
	if res.err != nil && !errors.Is(res.err, context.Canceled) {
		t.Fatalf("Follow returned %v", res.err)
	}
	if res.absorbed != wrote || res.failed != 0 {
		t.Fatalf("Follow absorbed %d / failed %d, want %d / 0 (the fragment must be skipped, not failed)", res.absorbed, res.failed, wrote)
	}
}

// TestFollowHTTPWarmsFromPeer is the cross-process story over HTTP: a
// follower Service tails a peer replica's GET /v1/log stream and
// absorbs both the traffic recorded before it connected and the
// records that arrive while it is attached.
func TestFollowHTTPWarmsFromPeer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer.jsonl")
	slog, err := OpenScenarioLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer slog.Close()
	peer := httptest.NewServer(NewHandler(NewService(), WithScenarioLog(slog)))
	defer peer.Close()

	post := func(seed int) {
		t.Helper()
		body := fmt.Sprintf(`{"family":"genome","tasks":40,"procs":3,"seed":%d}`, seed)
		status, resp, _ := postJSON(t, peer.Client(), peer.URL+"/v1/plan", body)
		if status != 200 {
			t.Fatalf("peer plan: %d %s", status, resp)
		}
	}
	for seed := 1; seed <= 3; seed++ {
		post(seed)
	}

	follower := NewService()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type followResult struct {
		absorbed, failed int
		err              error
	}
	resc := make(chan followResult, 1)
	go func() {
		a, fl, err := follower.Follow(ctx, peer.URL, 2)
		resc <- followResult{a, fl, err}
	}()

	waitFor := func(entries int, touches uint64) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			st := follower.Stats()
			if st.Entries == entries && st.Hits+st.Misses == touches {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower stats %+v, want %d entries / %d touches", st, entries, touches)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Backlog: the three scenarios planned before the follower attached.
	waitFor(3, 3)
	// Live propagation: a new scenario on the peer reaches the follower
	// without any reconnect.
	post(4)
	waitFor(4, 4)

	cancel()
	res := <-resc
	if res.err != nil && !errors.Is(res.err, context.Canceled) {
		t.Fatalf("Follow returned %v", res.err)
	}
	if res.absorbed != 4 || res.failed != 0 {
		t.Fatalf("Follow absorbed %d / failed %d, want 4 / 0", res.absorbed, res.failed)
	}
}

func int64p(v int64) *int64 { return &v }
