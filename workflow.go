package hanccr

import (
	"context"
	"fmt"
	"io"

	"repro/internal/mspg"
)

// Workflow is a materialized workflow DAG, before any platform
// calibration or CCR rescaling — what cmd/genwf writes out. It wraps
// the internal graph so the façade's surface stays free of internal
// types.
type Workflow struct {
	w         *mspg.Workflow
	redundant int
}

// GenerateWorkflow materializes the scenario's workflow — generating
// the family or decoding the injected document — without building a
// platform or plan. File sizes are the generator's own (no CCR
// rescaling).
func GenerateWorkflow(ctx context.Context, s Scenario) (*Workflow, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w, redundant, err := s.materialize(ctx)
	if err != nil {
		return nil, err
	}
	return &Workflow{w: w, redundant: redundant}, nil
}

// Name returns the workflow's label.
func (wf *Workflow) Name() string { return wf.w.Name }

// NumTasks returns the task count.
func (wf *Workflow) NumTasks() int { return wf.w.G.NumTasks() }

// NumFiles returns the file count.
func (wf *Workflow) NumFiles() int { return wf.w.G.NumFiles() }

// RedundantEdges counts transitively redundant edges the GSPG
// recognition fallback ignored (0 for pristine M-SPGs).
func (wf *Workflow) RedundantEdges() int { return wf.redundant }

// String summarizes the graph structure.
func (wf *Workflow) String() string { return fmt.Sprint(wf.w.G) }

// MSPGTasks recognizes the M-SPG structure and returns the structure
// tree's task count, or an error wrapping ErrNotMSPG.
func (wf *Workflow) MSPGTasks() (int, error) {
	node, err := mspg.Recognize(wf.w.G)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrNotMSPG, err)
	}
	return node.NumTasks(), nil
}

// WriteJSON writes the workflow in the library's native JSON schema.
func (wf *Workflow) WriteJSON(w io.Writer) error { return wf.w.G.WriteJSON(w) }

// WriteDAX writes the workflow as a Pegasus DAX document.
func (wf *Workflow) WriteDAX(w io.Writer) error { return wf.w.G.WriteDAX(w, wf.w.Name) }
